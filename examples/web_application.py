"""A Notes application served to the web, Domino-style.

Builds a project-tracking application whose *design lives in the database*
(view and agent stored as design notes), replicates it to a second server,
and serves both replicas over the Domino URL syntax — including search,
editing through the browser, and ACL enforcement. The design change made at
headquarters reaches the web server by replication and the rendered site
updates by itself.

Run with::

    python examples/web_application.py
"""

from __future__ import annotations

import random

from repro import (
    AccessControlList,
    AclLevel,
    Agent,
    AgentTrigger,
    Application,
    DominoWebServer,
    NotesDatabase,
    Replicator,
    SortOrder,
    ViewColumn,
    VirtualClock,
)


def main() -> None:
    clock = VirtualClock()
    hq = NotesDatabase("Projects", clock=clock, rng=random.Random(5),
                       server="hq")

    # Design the application — stored as notes inside the database.
    app_hq = Application(hq, designer="dev/Acme")
    app_hq.save_view(
        "ByStatus",
        'SELECT Form = "Project"',
        [
            ViewColumn(title="Status", item="Status", categorized=True),
            ViewColumn(title="Name", item="Name", sort=SortOrder.ASCENDING),
            ViewColumn(title="Owner", item="Owner"),
        ],
    )
    app_hq.save_agent(Agent(
        name="intake", trigger=AgentTrigger.ON_CREATE,
        selection='SELECT Form = "Project"',
        formula='DEFAULT Status := "proposed"; '
                'FIELD Slug := @LowerCase(@ReplaceSubstring(Name; " "; "-"))',
    ))

    for name, owner in [("Apollo Rewrite", "alice/Acme"),
                        ("Billing Cleanup", "bob/Acme"),
                        ("Cache Layer", "alice/Acme")]:
        clock.advance(60)
        hq.create({"Form": "Project", "Name": name, "Owner": owner},
                  author=owner)
    hq.update(hq.unids()[0], {"Status": "active"}, author="alice/Acme")

    # Replicate the whole application (data + design) to the web server.
    webserver_db = hq.new_replica("web01")
    clock.advance(60)
    Replicator().replicate(hq, webserver_db)
    app_web = Application(webserver_db)
    print(f"web replica opened: views={app_web.view_names} "
          f"agents={app_web.agent_names}")

    acl = AccessControlList(default_level=AclLevel.READER)
    acl.add("webmaster/Acme", AclLevel.EDITOR)
    webserver_db.acl = acl

    site = DominoWebServer(default_user="Anonymous")
    site.register("projects.nsf", app_web)

    print("\nGET /projects.nsf")
    print(site.handle("/projects.nsf").body)

    print("\nGET /projects.nsf/ByStatus?OpenView&Count=10")
    print(site.handle("/projects.nsf/ByStatus?OpenView&Count=10").body)

    unid = app_web.view("ByStatus").all_unids()[0]
    print(f"\nGET /projects.nsf/ByStatus/{unid[:8]}…?OpenDocument")
    print(site.handle(f"/projects.nsf/ByStatus/{unid}?OpenDocument").body)

    print("\nGET …?SearchView&Query=cache")
    print(site.handle("/projects.nsf/ByStatus?SearchView&Query=cache").body)

    # Browser edit — denied for Anonymous (Reader), allowed for webmaster.
    denied = site.handle(
        f"/projects.nsf/ByStatus/{unid}?EditDocument&Status=done")
    allowed = site.handle(
        f"/projects.nsf/ByStatus/{unid}?EditDocument&Status=done",
        user="webmaster/Acme")
    print(f"\nanonymous edit -> {denied.status}; "
          f"webmaster edit -> {allowed.status}; "
          f"status now {webserver_db.get(unid).get('Status')!r}")

    # A design change at HQ reaches the web by replication.
    clock.advance(60)
    app_hq.save_view(
        "ByStatus",
        'SELECT Form = "Project"',
        [
            ViewColumn(title="Status", item="Status", categorized=True),
            ViewColumn(title="Name", item="Name", sort=SortOrder.DESCENDING),
            ViewColumn(title="Slug", item="Slug"),
        ],
    )
    clock.advance(60)
    Replicator().replicate(hq, webserver_db)
    body = site.handle("/projects.nsf/ByStatus?OpenView").body
    print("\nafter replicated design change, the web view shows Slug column:",
          "Slug" in body)


if __name__ == "__main__":
    main()
