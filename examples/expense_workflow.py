"""An expense-approval workflow: mail + agents + security + views.

Employees mail expense reports; a triage agent routes them by amount; the
approver works a categorized view; reader fields keep each employee's
reports invisible to other employees; signing makes approvals
tamper-evident. This is the "structured workflow on groupware" pattern of
[ReMo96], built entirely from the document database primitives.

Run with::

    python examples/expense_workflow.py
"""

from __future__ import annotations

from repro import (
    Agent,
    AgentRunner,
    AgentTrigger,
    Directory,
    IdVault,
    MailRouter,
    SimulatedNetwork,
    SortOrder,
    View,
    ViewColumn,
    VirtualClock,
    make_memo,
)
from repro.core import ItemType
from repro.security import sign_document, verify_document
from repro.views import CategoryRow


def main() -> None:
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    network.add_server("hq")
    directory = Directory(clock=clock)
    directory.register_person("finance/Acme", "hq")
    for employee in ("gil/Acme", "hana/Acme", "ivan/Acme"):
        directory.register_person(employee, "hq")
    router = MailRouter(network, directory)
    inbox = router.mail_file("finance/Acme")

    # Triage agent: classify on arrival, hide each report from other staff.
    runner = AgentRunner(inbox)

    def triage(doc, db):
        if doc.get("Form") != "Memo" or "expense" not in doc.get("Subject", ""):
            return None
        amount = doc.get("Amount", 0)
        bucket = ("auto-approve" if amount <= 100
                  else "manager" if amount <= 1000
                  else "vp")
        doc.set("Readers", ["finance/Acme", doc.get("From")], ItemType.READERS)
        return {"Queue": bucket, "Status": "pending"}

    runner.add(Agent(name="triage", trigger=AgentTrigger.ON_CREATE,
                     action=triage))

    # Employees submit reports by mail.
    submissions = [
        ("gil/Acme", "expense: client lunch", 84),
        ("hana/Acme", "expense: conference travel", 640),
        ("ivan/Acme", "expense: new plotter", 4_800),
        ("gil/Acme", "expense: taxi", 35),
    ]
    for sender, subject, amount in submissions:
        clock.advance(60)
        router.submit(
            make_memo(sender, "finance/Acme", subject,
                      body=f"please reimburse {amount}",
                      extra_items={"Amount": amount}),
            "hq",
        )
    router.deliver_all()

    queue_view = View(
        inbox, "Approval Queues",
        selection='SELECT Status = "pending"',
        columns=[
            ViewColumn(title="Queue", item="Queue", categorized=True),
            ViewColumn(title="Subject", item="Subject",
                       sort=SortOrder.ASCENDING),
            ViewColumn(title="Amount", item="Amount", totals=True),
        ],
    )
    print("== Finance approval queues ==")
    for row in queue_view.rows():
        if isinstance(row, CategoryRow):
            print(f"[{row.value}]  ({row.count} items, "
                  f"total {row.subtotals[2]:,})")
        else:
            print(f"    {row.values[1]:<28} {row.values[2]:>7,}")

    # Reader fields: gil sees only his own reports.
    mine = [doc.get("Subject")
            for doc in inbox.all_documents() if doc.readers is None
            or "gil/Acme" in doc.readers]
    print(f"\nreports gil can read: "
          f"{sorted(s for s in mine if s.startswith('expense'))}")

    # Approve with a signature; any later tampering is detectable.
    vault = IdVault()
    vault.register("finance/Acme")
    approved = queue_view.documents_by_key("auto-approve")
    for doc in approved:
        inbox.update(doc.unid, {"Status": "approved"}, author="finance/Acme")
        fresh = inbox.get(doc.unid)
        sign_document(fresh, "finance/Acme", vault)
        print(f"approved + signed: {fresh.get('Subject')!r} "
              f"(verifies: {verify_document(fresh, vault)})")
    victim = inbox.get(approved[0].unid)
    victim.set("Amount", 9_999)
    print(f"after tampering with the amount, signature verifies: "
          f"{verify_document(victim, vault)}")


if __name__ == "__main__":
    main()
