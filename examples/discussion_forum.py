"""A replicated discussion forum across three regional servers.

The archetypal Notes application: main topics with threaded responses,
categorized views, a moderation agent, full-text search, and hub-and-spoke
replication that converges the three regional replicas — conflict documents
included.

Run with::

    python examples/discussion_forum.py
"""

from __future__ import annotations

import random

from repro import (
    Agent,
    AgentRunner,
    AgentTrigger,
    FullTextIndex,
    NotesDatabase,
    ReplicationScheduler,
    ReplicationTopology,
    SimulatedNetwork,
    SortOrder,
    View,
    ViewColumn,
    VirtualClock,
    converged,
)
from repro.views import CategoryRow


def build_network():
    clock = VirtualClock()
    network = SimulatedNetwork(clock)
    hub = network.add_server("hub")
    for name in ("emea", "apac"):
        network.add_server(name)
    forum = NotesDatabase("Watercooler", clock=clock, rng=random.Random(1),
                          server="hub")
    hub.add_database(forum)
    emea = forum.new_replica("emea")
    network.server("emea").add_database(emea)
    apac = forum.new_replica("apac")
    network.server("apac").add_database(apac)
    return clock, network, forum, emea, apac


def main() -> None:
    clock, network, forum, emea, apac = build_network()

    # Moderation agent on the hub: stamp every new topic.
    runner = AgentRunner(forum)
    runner.add(Agent(
        name="moderator",
        trigger=AgentTrigger.ON_CREATE,
        selection='SELECT Form = "MainTopic"',
        formula='FIELD Status := "visible"; '
                'FIELD Flagged := @If(@Contains(Subject; "buy now"); 1; 0)',
    ))

    # Users in each region post locally.
    topic = emea.create(
        {"Form": "MainTopic", "Subject": "Best coffee near the office?",
         "Categories": "random", "Body": "Asking for a friend."},
        author="bob/EMEA/Acme",
    )
    clock.advance(30)
    apac.create(
        {"Form": "MainTopic", "Subject": "Deployment window for v4",
         "Categories": "work", "Body": "Proposing Saturday 02:00 UTC."},
        author="chen/APAC/Acme",
    )
    clock.advance(30)
    spam = emea.create(
        {"Form": "MainTopic", "Subject": "buy now: miracle pager batteries",
         "Categories": "random", "Body": "limited time!!"},
        author="spammer/Nowhere",
    )

    # Hub-and-spoke replication, every 15 simulated minutes.
    topology = ReplicationTopology.hub_spoke("hub", ["emea", "apac"],
                                             interval=900)
    scheduler = ReplicationScheduler(network, topology)
    rounds = scheduler.rounds_to_convergence([forum, emea, apac])
    print(f"replicas converged in {rounds} rounds "
          f"({network.stats.bytes_sent:,} bytes on the wire)")

    # Responses arrive in different regions; thread structure replicates.
    clock.advance(60)
    reply = apac.create(
        {"Form": "Response", "Subject": "re: coffee",
         "Body": "The cart on level 3 is underrated."},
        author="chen/APAC/Acme", parent=topic.unid,
    )
    clock.advance(60)
    scheduler.rounds_to_convergence([forum, emea, apac])  # reply reaches emea
    clock.advance(60)
    emea.create(
        {"Form": "Response", "Subject": "re: re: coffee",
         "Body": "Strong disagree, it's burnt."},
        author="dana/EMEA/Acme", parent=reply.unid,
    )

    # Concurrent edit of the same topic in two regions -> conflict document.
    clock.advance(60)
    emea.update(topic.unid, {"Body": "EDIT: found a great place!"},
                author="bob/EMEA/Acme")
    clock.advance(1)
    apac.update(topic.unid, {"Body": "EDIT: please post addresses."},
                author="chen/APAC/Acme")
    clock.advance(60)
    rounds = scheduler.rounds_to_convergence([forum, emea, apac])
    assert converged([forum, emea, apac])

    # The hub's threaded view (agent stamped the hub copies on arrival).
    threads = View(
        forum, "Threads",
        selection='SELECT Form = "MainTopic" | @AllDescendants',
        columns=[
            ViewColumn(title="Categories", item="Categories", categorized=True),
            ViewColumn(title="Subject", item="Subject",
                       sort=SortOrder.ASCENDING),
        ],
        hierarchical=True,
    )
    print("\n== Threads (hub) ==")
    for row in threads.rows():
        if isinstance(row, CategoryRow):
            print(f"▼ {row.value} ({row.count})")
        else:
            doc = forum.get(row.unid)
            marker = " [CONFLICT]" if doc.is_conflict else ""
            print("  " * row.level + f"- {row.values[1]}{marker}")

    conflicts = [d for d in forum.all_documents() if d.is_conflict]
    print(f"\nconflict documents preserved: {len(conflicts)}")
    flagged = [d for d in forum.all_documents() if d.get("Flagged") == 1]
    print(f"agent flagged as spam: {[d.get('Subject') for d in flagged]}")

    index = FullTextIndex(forum)
    print("\n== search: coffee ==")
    for hit in index.search("coffee"):
        print(f"  {forum.get(hit.unid).get('Subject')!r} score={hit.score:.2f}")


if __name__ == "__main__":
    main()
