"""Calendar & scheduling: free-time search across replicated calendars.

Three people keep appointment documents in a shared calendar database; the
busy-time index follows changes (including appointments arriving by
replication from a second site), and the scheduler books the earliest slot
everyone can make.

Run with::

    python examples/meeting_scheduler.py
"""

from __future__ import annotations

import random

from repro import (
    BusyTimeIndex,
    NotesDatabase,
    Replicator,
    VirtualClock,
    book_meeting,
    find_free_slots,
)
from repro.calendar import make_appointment

HOUR = 3600.0


def hhmm(seconds: float) -> str:
    return f"{int(seconds // HOUR):02d}:{int(seconds % HOUR // 60):02d}"


def main() -> None:
    clock = VirtualClock()
    hq_cal = NotesDatabase("Team Calendar", clock=clock,
                           rng=random.Random(3), server="hq")
    index = BusyTimeIndex([hq_cal])

    # The working day: 09:00–17:00 (virtual seconds of day zero).
    day_start, day_end = 9 * HOUR, 17 * HOUR

    hq_cal.create(make_appointment("alice/Acme", "1:1 with manager",
                                   9 * HOUR, 10 * HOUR), author="alice/Acme")
    hq_cal.create(make_appointment("alice/Acme", "design review",
                                   13 * HOUR, 15 * HOUR,
                                   attendees=["bob/Acme"]), author="alice/Acme")
    hq_cal.create(make_appointment("bob/Acme", "support rotation",
                                   9 * HOUR, 12 * HOUR), author="bob/Acme")

    # Chen's appointments live on another server and replicate in.
    satellite = hq_cal.new_replica("satellite")
    satellite.create(make_appointment("chen/Acme", "customer call",
                                      10 * HOUR, 11.5 * HOUR),
                     author="chen/Acme")
    clock.advance(60)
    Replicator().replicate(hq_cal, satellite)

    people = ["alice/Acme", "bob/Acme", "chen/Acme"]
    print("busy times:")
    for person in people:
        spans = ", ".join(
            f"{hhmm(i.start)}–{hhmm(i.end)}"
            for i in index.busy_intervals(person)
        )
        print(f"  {person:<12} {spans or '(free)'}")

    slots = find_free_slots(index, people, day_start, day_end,
                            duration=HOUR, limit=3)
    print("\ncommon 60-minute slots:",
          ", ".join(f"{hhmm(s.start)}–{hhmm(s.end)}" for s in slots))

    meeting = book_meeting(hq_cal, index, "alice/Acme", "Q3 planning",
                           ["bob/Acme", "chen/Acme"],
                           day_start, day_end, duration=HOUR)
    print(f"\nbooked 'Q3 planning' at "
          f"{hhmm(meeting.get('StartTime'))}–{hhmm(meeting.get('EndTime'))}")

    follow_up = book_meeting(hq_cal, index, "alice/Acme", "Q3 planning pt 2",
                             ["bob/Acme", "chen/Acme"],
                             day_start, day_end, duration=HOUR)
    print(f"booked the follow-up at "
          f"{hhmm(follow_up.get('StartTime'))}–{hhmm(follow_up.get('EndTime'))}"
          " (stacked after the first)")


if __name__ == "__main__":
    main()
